// Property-based tests: invariants that must hold for ANY workload, any
// replication mode, any fault schedule.
//
//  P1  Convergence: after the load stops and replication drains, all live
//      replicas hold identical committed data.
//  P2  Conservation: the workload only moves balance between rows, so the
//      cluster-wide SUM(balance) is exactly (initial + successful
//      increments) on every replica.
//  P3  Durability of acknowledgement: every transaction acked committed is
//      visible afterwards — except the quantified 1-safe loss window,
//      which the controller must account for exactly.
//  P4  Crash/recovery convergence: random crash/restart schedules during
//      load still end in convergence once everything is repaired.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "faults/fault_injector.h"
#include "middleware/cluster.h"
#include "workload/load_generator.h"
#include "workload/workloads.h"

namespace replidb::middleware {
namespace {

using sim::kMillisecond;
using sim::kSecond;

std::string ModeName(ReplicationMode m) {
  switch (m) {
    case ReplicationMode::kMasterSlaveAsync: return "MsAsync";
    case ReplicationMode::kMasterSlaveSync: return "MsSync";
    case ReplicationMode::kMultiMasterStatement: return "MmStmt";
    case ReplicationMode::kMultiMasterCertification: return "MmCert";
  }
  return "?";
}

// ---------------------------------------------------------------------------
// P1+P2: convergence and conservation under concurrent random load.

using SweepParam = std::tuple<ReplicationMode, int /*seed*/>;

class ConvergenceSweep : public ::testing::TestWithParam<SweepParam> {};

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, ConvergenceSweep,
    ::testing::Combine(
        ::testing::Values(ReplicationMode::kMasterSlaveAsync,
                          ReplicationMode::kMasterSlaveSync,
                          ReplicationMode::kMultiMasterStatement,
                          ReplicationMode::kMultiMasterCertification),
        ::testing::Values(1, 2, 3)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return ModeName(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(ConvergenceSweep, ConvergesAndConservesMoney) {
  auto [mode, seed] = GetParam();
  workload::MicroWorkload::Options wo;
  wo.rows = 150;
  wo.write_fraction = 0.4;
  wo.hot_fraction = 0.3;  // Real contention.
  wo.hot_rows = 5;
  workload::MicroWorkload w(wo);

  ClusterOptions opts;
  opts.replicas = 3;
  opts.drivers = 4;
  opts.controller.mode = mode;
  opts.driver.max_retries = 6;
  Cluster c(std::move(opts));
  c.Setup(w.SetupStatements());
  c.Start();

  std::vector<std::unique_ptr<workload::ClosedLoopGenerator>> gens;
  sim::TimePoint stop = c.sim.Now() + 8 * kSecond;
  for (int d = 0; d < 4; ++d) {
    gens.push_back(std::make_unique<workload::ClosedLoopGenerator>(
        &c.sim, c.driver(d), &w, /*clients=*/4, 0,
        static_cast<uint64_t>(seed * 100 + d)));
    gens.back()->Arm(stop);
  }
  c.sim.RunUntil(stop);
  c.sim.RunFor(10 * kSecond);  // Drain replication.

  uint64_t committed_writes = 0;
  for (auto& g : gens) {
    committed_writes += g->stats().write_latency_ms.count();
  }
  ASSERT_GT(committed_writes, 100u) << "sweep must exercise real load";

  // P1: all replicas identical.
  EXPECT_TRUE(c.Converged())
      << ModeName(mode) << " diverged (" << c.DistinctContents()
      << " distinct states)";
  EXPECT_EQ(c.TotalApplyErrors(), 0u);

  // P2: SUM(balance) == initial + one increment per acked commit, on every
  // replica (each write adds exactly +1).
  int64_t expected = 150 * 1000 + static_cast<int64_t>(committed_writes);
  for (int i = 0; i < 3; ++i) {
    engine::Rdbms* db = c.replica(i)->engine();
    engine::SessionId s = db->Connect().value();
    engine::ExecResult r = db->Execute(s, "SELECT SUM(balance) FROM accounts");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.rows[0][0].AsInt(), expected)
        << "replica " << i << " lost or duplicated an acked increment";
    db->Disconnect(s);
  }
}

// ---------------------------------------------------------------------------
// P3+P4: random crash schedules; convergence after repair; loss accounting.

using CrashParam = std::tuple<ReplicationMode, int>;

class CrashRecoverySweep : public ::testing::TestWithParam<CrashParam> {};

INSTANTIATE_TEST_SUITE_P(
    ModesAndSeeds, CrashRecoverySweep,
    ::testing::Combine(
        ::testing::Values(ReplicationMode::kMasterSlaveAsync,
                          ReplicationMode::kMultiMasterCertification,
                          ReplicationMode::kMultiMasterStatement),
        ::testing::Values(11, 12)),
    [](const ::testing::TestParamInfo<CrashParam>& info) {
      return ModeName(std::get<0>(info.param)) + "_seed" +
             std::to_string(std::get<1>(info.param));
    });

TEST_P(CrashRecoverySweep, RecoversAndConvergesAfterRandomCrashes) {
  auto [mode, seed] = GetParam();
  workload::MicroWorkload::Options wo;
  wo.rows = 100;
  wo.write_fraction = 0.5;
  workload::MicroWorkload w(wo);

  ClusterOptions opts;
  opts.replicas = 3;
  opts.controller.mode = mode;
  opts.controller.heartbeat.period = 200 * kMillisecond;
  opts.controller.heartbeat.timeout = 200 * kMillisecond;
  opts.controller.heartbeat.miss_threshold = 2;
  opts.driver.max_retries = 8;
  opts.driver.request_timeout = 500 * kMillisecond;
  Cluster c(std::move(opts));
  c.Setup(w.SetupStatements());
  c.Start();

  // Aggressive random crash/restart schedule across all replicas.
  faults::FaultInjector::Options fo;
  fo.node_mttf = 6 * kSecond;
  fo.node_mttr = 2 * kSecond;
  fo.seed = static_cast<uint64_t>(seed);
  faults::FaultInjector injector(&c.sim, fo);
  injector.ScheduleCrashLoop({c.replica(0), c.replica(1), c.replica(2)},
                             c.sim.Now() + 20 * kSecond);

  workload::ClosedLoopGenerator gen(&c.sim, c.driver(), &w, 8, 0,
                                    static_cast<uint64_t>(seed));
  gen.Run(20 * kSecond);
  EXPECT_GT(injector.crashes_injected(), 0) << "schedule must inject faults";

  // Repair everything and let resync finish.
  for (int i = 0; i < 3; ++i) {
    if (c.replica(i)->crashed()) c.replica(i)->Restart();
  }
  c.sim.RunFor(30 * kSecond);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(c.controller->replica_state(i + 1),
              Controller::ReplicaState::kOnline)
        << "replica " << i << " must rejoin";
  }
  EXPECT_TRUE(c.Converged())
      << ModeName(mode) << " diverged after crash/recovery ("
      << c.DistinctContents() << " states)";

  // P3: conservation modulo the accounted 1-safe loss. Acked increments
  // can exceed surviving data only by what the controller reported lost.
  uint64_t acked = gen.stats().write_latency_ms.count();
  engine::Rdbms* db = c.replica(0)->engine();
  engine::SessionId s = db->Connect().value();
  engine::ExecResult r = db->Execute(s, "SELECT SUM(balance) FROM accounts");
  ASSERT_TRUE(r.ok());
  int64_t surviving_increments = r.rows[0][0].AsInt() - 100 * 1000;
  int64_t missing = static_cast<int64_t>(acked) - surviving_increments;
  EXPECT_GE(missing, 0) << "more data than acknowledgements?!";
  EXPECT_LE(missing,
            static_cast<int64_t>(c.controller->stats().lost_transactions))
      << "unaccounted lost transactions";
  db->Disconnect(s);
}

// ---------------------------------------------------------------------------
// Determinism of the whole stack: same seed, same trace.

TEST(DeterminismProperty, IdenticalSeedsProduceIdenticalRuns) {
  auto run = []() {
    workload::TicketBrokerWorkload w;
    ClusterOptions opts;
    opts.replicas = 3;
    opts.controller.mode = ReplicationMode::kMultiMasterCertification;
    Cluster c(std::move(opts));
    c.Setup(w.SetupStatements());
    c.Start();
    workload::OpenLoopGenerator gen(&c.sim, c.driver(), &w, 500, 99);
    gen.Run(5 * kSecond);
    return std::make_tuple(gen.stats().committed, gen.stats().failed,
                           c.replica(0)->engine()->ContentHash(),
                           c.controller->global_version());
  };
  auto a = run();
  auto b = run();
  EXPECT_EQ(a, b) << "the simulation must be fully deterministic";
}

}  // namespace
}  // namespace replidb::middleware
