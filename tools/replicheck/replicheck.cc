// replicheck — repo-specific determinism & concurrency lint for replidb.
//
// The paper's central practical gap is *silent replica divergence*
// (Cecchet et al., SIGMOD'08 §4): nondeterminism that leaks into the
// replication stream corrupts replicas without raising any error. This
// tool enforces the repo invariants that keep our own C++ on the right
// side of that line, as a token-level analyzer over the tree (no libclang
// dependency). It runs as a ctest and a CI gate.
//
// Rules (each can be waived per-site with
//   `// replicheck:allow(<rule>[,<rule>...]) <reason>`
// on the flagged line or the line above; every allow is inventoried):
//
//   raw-rng        rand()/srand()/std::random_device/std::mt19937 & friends
//                  anywhere outside src/common/rng.h — all randomness goes
//                  through replidb::Rng with an explicit plumbed seed.
//   wall-clock     system_clock/steady_clock/high_resolution_clock,
//                  gettimeofday/clock_gettime/timespec_get, argless time()
//                  or clock() in src/ — simulation code runs on virtual
//                  time only.
//   addr-identity  "%p" in a format string, or std::map/std::set keyed by
//                  a pointer type — addresses vary run to run, so both are
//                  run-local identity leaking into ordered output.
//   unordered-iter iteration (range-for or .begin()) over an
//                  unordered_map/unordered_set/HashMap/HashSet in a
//                  replication-visible directory (src/engine, src/ship,
//                  src/middleware, src/gcs, src/audit) — hash order must
//                  never reach the replication stream.
//   send-size      a Send(...) call site whose size_bytes argument is a
//                  bare integer literal (outside tests/bench) — sizes must
//                  be named constants or computed from the payload.
//   codec-registry a struct declared in src/middleware/messages.h that is
//                  missing from the REPLIDB_WIRE_MESSAGES inventory in
//                  src/middleware/wire_registry.h.
//   raw-mutex      a std::mutex/recursive_mutex/shared_mutex declared
//                  outside src/common/locks.h — locks carry a declared
//                  rank via common::OrderedMutex.
//   lock-rank      a LockRank::k... mention that is not declared in the
//                  lock-order table in src/common/locks.h.
//
// Exit codes: 0 clean, 1 violations found, 2 usage/configuration error.

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Source model
// ---------------------------------------------------------------------------

struct Token {
  enum Kind { kIdent, kNumber, kPunct } kind;
  std::string text;
  int line;
};

struct AllowDirective {
  int line = 0;                    // Line the comment appears on.
  std::vector<std::string> rules;  // Rules it waives.
  std::string reason;
  bool used = false;
};

struct SourceFile {
  std::string rel_path;            // Relative to --root, '/'-separated.
  std::vector<Token> tokens;
  std::vector<AllowDirective> allows;
  // Line -> concatenated string-literal contents on that line (for %p).
  std::map<int, std::string> strings_by_line;
  std::vector<std::string> includes;  // Quoted #include paths, verbatim.
};

struct Finding {
  std::string file;
  int line;
  std::string rule;
  std::string message;
};

// Strips comments / string / char literals from `text`, recording comment
// text (for allow directives) and string contents per line. Returns the
// blanked code (same length/line structure as the input).
std::string StripAndRecord(const std::string& text, SourceFile* out) {
  std::string code;
  code.reserve(text.size());
  std::map<int, std::string> comments;
  int line = 1;
  size_t i = 0;
  const size_t n = text.size();
  auto at = [&](size_t k) { return k < n ? text[k] : '\0'; };
  while (i < n) {
    char c = text[i];
    if (c == '\n') {
      code += '\n';
      ++line;
      ++i;
    } else if (c == '/' && at(i + 1) == '/') {
      size_t j = i + 2;
      while (j < n && text[j] != '\n') ++j;
      comments[line] += text.substr(i + 2, j - (i + 2));
      code.append(j - i, ' ');
      i = j;
    } else if (c == '/' && at(i + 1) == '*') {
      size_t j = i + 2;
      while (j < n && !(text[j] == '*' && at(j + 1) == '/')) {
        if (text[j] == '\n') {
          comments[line] += '\n';
          code += '\n';
          ++line;
        } else {
          comments[line] += text[j];
          code += ' ';
        }
        ++j;
      }
      if (j < n) j += 2;
      code += "  ";
      i = j;
    } else if (c == '"' || c == '\'') {
      // Raw strings: R"delim( ... )delim".
      bool raw = false;
      if (c == '"' && i > 0 && text[i - 1] == 'R') {
        raw = true;
      }
      code += c;
      size_t j = i + 1;
      std::string content;
      if (raw) {
        std::string delim;
        while (j < n && text[j] != '(') delim += text[j++];
        std::string closer = ")" + delim + "\"";
        size_t end = text.find(closer, j);
        if (end == std::string::npos) end = n;
        for (size_t k = j; k < end && k < n; ++k) {
          if (text[k] == '\n') {
            code += '\n';
            ++line;
          } else {
            content += text[k];
            code += ' ';
          }
        }
        j = std::min(end + closer.size(), n);
        code += '"';
      } else {
        while (j < n && text[j] != c) {
          if (text[j] == '\\' && j + 1 < n) {
            content += text[j];
            content += text[j + 1];
            code += "  ";
            j += 2;
            continue;
          }
          if (text[j] == '\n') break;  // Unterminated; be lenient.
          content += text[j];
          code += ' ';
          ++j;
        }
        if (j < n && text[j] == c) ++j;
        code += c;
      }
      if (c == '"') out->strings_by_line[line] += content;
      i = j;
    } else {
      code += c;
      ++i;
    }
  }
  // Allow directives and #include paths come out of the recorded text.
  for (const auto& [ln, comment] : comments) {
    size_t pos = comment.find("replicheck:allow(");
    if (pos == std::string::npos) continue;
    size_t open = pos + std::strlen("replicheck:allow(");
    size_t close = comment.find(')', open);
    if (close == std::string::npos) continue;
    AllowDirective d;
    d.line = ln;
    std::stringstream rules(comment.substr(open, close - open));
    std::string r;
    while (std::getline(rules, r, ',')) {
      r.erase(std::remove_if(r.begin(), r.end(), ::isspace), r.end());
      if (!r.empty()) d.rules.push_back(r);
    }
    std::string reason = comment.substr(close + 1);
    size_t b = reason.find_first_not_of(" \t");
    d.reason = b == std::string::npos ? "" : reason.substr(b);
    size_t e = d.reason.find_last_not_of(" \t\r\n");
    if (e != std::string::npos) d.reason = d.reason.substr(0, e + 1);
    out->allows.push_back(std::move(d));
  }
  return code;
}

void Tokenize(const std::string& code, std::vector<Token>* out) {
  int line = 1;
  size_t i = 0;
  const size_t n = code.size();
  while (i < n) {
    char c = code[i];
    if (c == '\n') {
      ++line;
      ++i;
    } else if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
    } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(code[j])) ||
                       code[j] == '_')) {
        ++j;
      }
      out->push_back({Token::kIdent, code.substr(i, j - i), line});
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(code[j])) ||
                       code[j] == '.' || code[j] == '\'')) {
        ++j;
      }
      out->push_back({Token::kNumber, code.substr(i, j - i), line});
      i = j;
    } else {
      out->push_back({Token::kPunct, std::string(1, c), line});
      ++i;
    }
  }
}

void CollectIncludes(const std::string& text, SourceFile* out) {
  std::stringstream ss(text);
  std::string l;
  while (std::getline(ss, l)) {
    size_t h = l.find("#include");
    if (h == std::string::npos) continue;
    size_t q1 = l.find('"', h);
    if (q1 == std::string::npos) continue;
    size_t q2 = l.find('"', q1 + 1);
    if (q2 == std::string::npos) continue;
    out->includes.push_back(l.substr(q1 + 1, q2 - q1 - 1));
  }
}

// ---------------------------------------------------------------------------
// Analyzer
// ---------------------------------------------------------------------------

const char* const kAllRules[] = {
    "raw-rng",       "wall-clock",     "addr-identity", "unordered-iter",
    "send-size",     "codec-registry", "raw-mutex",     "lock-rank",
};

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

class Analyzer {
 public:
  explicit Analyzer(fs::path root) : root_(std::move(root)) {}

  bool LoadFiles(const std::string& compile_commands);
  void Run();
  int Report(bool verbose) const;

 private:
  SourceFile* Load(const fs::path& abs, const std::string& rel);
  void Flag(const SourceFile& f, int line, const std::string& rule,
            const std::string& message);
  bool Allowed(SourceFile& f, int line, const std::string& rule);

  // The per-file unordered-container declaration names, resolved
  // transitively through in-repo includes.
  const std::set<std::string>& UnorderedNames(const std::string& rel);

  void CheckRng(SourceFile& f);
  void CheckClock(SourceFile& f);
  void CheckAddrIdentity(SourceFile& f);
  void CheckUnorderedIter(SourceFile& f);
  void CheckSendSize(SourceFile& f);
  void CheckMutex(SourceFile& f);
  void CheckLockRanks(SourceFile& f, const std::set<std::string>& declared);
  void CheckCodecRegistry();

  fs::path root_;
  std::map<std::string, SourceFile> files_;        // rel path -> file
  std::map<std::string, std::set<std::string>> own_unordered_;
  std::map<std::string, std::set<std::string>> resolved_unordered_;
  std::vector<Finding> findings_;
  int suppressed_ = 0;
  int lock_sites_ = 0;
};

SourceFile* Analyzer::Load(const fs::path& abs, const std::string& rel) {
  std::ifstream in(abs);
  if (!in) return nullptr;
  std::stringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  SourceFile f;
  f.rel_path = rel;
  std::string code = StripAndRecord(text, &f);
  Tokenize(code, &f.tokens);
  CollectIncludes(text, &f);
  auto [it, _] = files_.insert_or_assign(rel, std::move(f));
  return &it->second;
}

bool Analyzer::LoadFiles(const std::string& compile_commands) {
  std::set<std::string> wanted;
  if (!compile_commands.empty()) {
    std::ifstream in(compile_commands);
    if (!in) {
      std::fprintf(stderr, "replicheck: cannot read %s\n",
                   compile_commands.c_str());
      return false;
    }
    std::stringstream buf;
    buf << in.rdbuf();
    const std::string text = buf.str();
    // Minimal JSON scrape: every "file": "<path>" entry.
    const std::string key = "\"file\"";
    for (size_t pos = text.find(key); pos != std::string::npos;
         pos = text.find(key, pos + 1)) {
      size_t q1 = text.find('"', text.find(':', pos));
      size_t q2 = text.find('"', q1 + 1);
      if (q1 == std::string::npos || q2 == std::string::npos) break;
      std::string path = text.substr(q1 + 1, q2 - q1 - 1);
      std::error_code ec;
      fs::path rel = fs::relative(path, root_, ec);
      if (ec) continue;
      std::string r = rel.generic_string();
      if (StartsWith(r, "src/") || StartsWith(r, "tests/") ||
          StartsWith(r, "bench/")) {
        wanted.insert(r);
      }
    }
  }
  // Headers never appear in compile_commands; .cc files only do when no
  // database was given. Walk the three trees.
  for (const char* top : {"src", "tests", "bench"}) {
    fs::path dir = root_ / top;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::recursive_directory_iterator(dir)) {
      if (!entry.is_regular_file()) continue;
      std::string ext = entry.path().extension().string();
      bool take = ext == ".h" || ext == ".hpp" ||
                  (compile_commands.empty() && (ext == ".cc" || ext == ".cpp"));
      if (take) {
        wanted.insert(fs::relative(entry.path(), root_).generic_string());
      }
    }
  }
  if (wanted.empty()) {
    std::fprintf(stderr, "replicheck: no source files under %s\n",
                 root_.string().c_str());
    return false;
  }
  for (const std::string& rel : wanted) {
    if (!Load(root_ / rel, rel)) {
      std::fprintf(stderr, "replicheck: cannot read %s\n", rel.c_str());
      return false;
    }
  }
  return true;
}

bool Analyzer::Allowed(SourceFile& f, int line, const std::string& rule) {
  for (AllowDirective& d : f.allows) {
    if (d.line != line && d.line != line - 1) continue;
    for (const std::string& r : d.rules) {
      if (r == rule) {
        d.used = true;
        ++suppressed_;
        return true;
      }
    }
  }
  return false;
}

void Analyzer::Flag(const SourceFile& f, int line, const std::string& rule,
                    const std::string& message) {
  findings_.push_back({f.rel_path, line, rule, message});
}

// --- unordered declaration collection --------------------------------------

const std::set<std::string> kUnorderedTypes = {
    "unordered_map", "unordered_set", "unordered_multimap",
    "unordered_multiset", "HashMap", "HashSet"};

std::set<std::string> CollectUnorderedDecls(const SourceFile& f) {
  std::set<std::string> names;
  const auto& t = f.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !kUnorderedTypes.count(t[i].text)) {
      continue;
    }
    if (t[i + 1].text != "<") continue;
    // Skip the template argument list.
    size_t j = i + 1;
    int depth = 0;
    for (; j < t.size(); ++j) {
      if (t[j].text == "<") ++depth;
      else if (t[j].text == ">") {
        if (--depth == 0) break;
      } else if (t[j].text == ";") {
        break;  // Malformed / not a declaration.
      }
    }
    if (j >= t.size() || t[j].text != ">") continue;
    ++j;
    while (j < t.size() && (t[j].text == "&" || t[j].text == "*")) ++j;
    if (j + 1 < t.size() && t[j].kind == Token::kIdent) {
      const std::string& next = t[j + 1].text;
      if (next == ";" || next == "=" || next == "{" || next == "," ||
          next == ")") {
        names.insert(t[j].text);
      }
    }
  }
  return names;
}

const std::set<std::string>& Analyzer::UnorderedNames(const std::string& rel) {
  auto it = resolved_unordered_.find(rel);
  if (it != resolved_unordered_.end()) return it->second;
  // Insert an empty set first to break include cycles.
  auto& out = resolved_unordered_[rel];
  auto own = own_unordered_.find(rel);
  if (own != own_unordered_.end()) out = own->second;
  auto fit = files_.find(rel);
  if (fit != files_.end()) {
    for (const std::string& inc : fit->second.includes) {
      // Quoted includes are rooted at src/.
      std::string target = "src/" + inc;
      if (files_.count(target)) {
        const std::set<std::string>& sub = UnorderedNames(target);
        out.insert(sub.begin(), sub.end());
      }
    }
  }
  return out;
}

// --- rules -----------------------------------------------------------------

void Analyzer::CheckRng(SourceFile& f) {
  if (f.rel_path == "src/common/rng.h") return;
  static const std::set<std::string> kBanned = {
      "rand",          "srand",      "rand_r",
      "random_device", "mt19937",    "mt19937_64",
      "minstd_rand",   "minstd_rand0", "default_random_engine",
  };
  const auto& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !kBanned.count(t[i].text)) continue;
    // `rand`/`srand` must look like a call; the std engines are flagged on
    // any mention (declaration or construction).
    bool call_like = i + 1 < t.size() && t[i + 1].text == "(";
    bool engine = t[i].text != "rand" && t[i].text != "srand" &&
                  t[i].text != "rand_r";
    if (!call_like && !engine) continue;
    // Member access (foo.rand(), rng->rand()) is someone's API, not libc.
    if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == ">")) continue;
    if (Allowed(f, t[i].line, "raw-rng")) continue;
    Flag(f, t[i].line, "raw-rng",
         "'" + t[i].text +
             "' — all randomness goes through replidb::Rng "
             "(src/common/rng.h) with a seed plumbed from scenario config");
  }
}

void Analyzer::CheckClock(SourceFile& f) {
  if (!StartsWith(f.rel_path, "src/")) return;
  static const std::set<std::string> kBannedClocks = {
      "system_clock", "steady_clock", "high_resolution_clock",
      "gettimeofday", "clock_gettime", "timespec_get", "ftime",
  };
  const auto& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent) continue;
    const std::string& id = t[i].text;
    if (kBannedClocks.count(id)) {
      if (i > 0 && (t[i - 1].text == "." )) continue;
      if (Allowed(f, t[i].line, "wall-clock")) continue;
      Flag(f, t[i].line, "wall-clock",
           "'" + id +
               "' — simulation code runs on sim::Simulator virtual time; "
               "wall clocks diverge across replicas (paper §4, NOW())");
      continue;
    }
    // Argless time() / clock(): time(), time(0), time(nullptr), time(NULL).
    if ((id == "time" || id == "clock") && i + 1 < t.size() &&
        t[i + 1].text == "(") {
      if (i > 0 && (t[i - 1].text == "." || t[i - 1].text == ">" ||
                    t[i - 1].text == ":" || t[i - 1].kind == Token::kIdent)) {
        continue;  // Member access, qualified name, or a declaration.
      }
      size_t j = i + 2;
      bool argless =
          j < t.size() &&
          (t[j].text == ")" ||
           ((t[j].text == "0" || t[j].text == "nullptr" || t[j].text == "NULL") &&
            j + 1 < t.size() && t[j + 1].text == ")"));
      if (!argless) continue;
      if (Allowed(f, t[i].line, "wall-clock")) continue;
      Flag(f, t[i].line, "wall-clock",
           "'" + id + "()' — wall-clock reads are nondeterministic; use the "
                      "simulator clock");
    }
  }
}

void Analyzer::CheckAddrIdentity(SourceFile& f) {
  if (!StartsWith(f.rel_path, "src/")) return;
  for (const auto& [line, content] : f.strings_by_line) {
    if (content.find("%p") != std::string::npos) {
      SourceFile& mf = f;
      if (Allowed(mf, line, "addr-identity")) continue;
      Flag(f, line, "addr-identity",
           "\"%p\" formats an address — run-local identity must never reach "
           "logs or replicated output");
    }
  }
  // std::map / std::set keyed by a pointer: comparison order is address
  // order, i.e. per-run.
  static const std::set<std::string> kOrdered = {"map", "set", "multimap",
                                                 "multiset"};
  const auto& t = f.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !kOrdered.count(t[i].text)) continue;
    if (t[i + 1].text != "<") continue;
    // First top-level template argument.
    int depth = 1;
    bool ptr_key = false;
    size_t j = i + 2;
    std::string prev;
    for (; j < t.size() && depth > 0; ++j) {
      const std::string& x = t[j].text;
      if (x == "<" || x == "(") ++depth;
      else if (x == ">" || x == ")") --depth;
      else if (depth == 1 && x == ",") break;
      if (depth >= 1) {
        if (x == "*" && !prev.empty()) ptr_key = true;
        else if (x != "const") ptr_key = ptr_key && x == "*";
        prev = x;
      }
    }
    if (ptr_key) {
      if (Allowed(f, t[i].line, "addr-identity")) continue;
      Flag(f, t[i].line, "addr-identity",
           "ordered container keyed by a pointer — iteration order is "
           "address order, which varies run to run");
    }
  }
}

void Analyzer::CheckUnorderedIter(SourceFile& f) {
  static const char* const kTagged[] = {"src/engine/", "src/ship/",
                                        "src/middleware/", "src/gcs/",
                                        "src/audit/"};
  bool tagged = false;
  for (const char* d : kTagged) tagged = tagged || StartsWith(f.rel_path, d);
  if (!tagged) return;
  const std::set<std::string>& names = UnorderedNames(f.rel_path);
  if (names.empty()) return;
  const auto& t = f.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    // Range-for over an unordered container: for ( ... : NAME )
    if (t[i].kind == Token::kIdent && t[i].text == "for" &&
        i + 1 < t.size() && t[i + 1].text == "(") {
      int depth = 0;
      size_t colon = 0;
      size_t close = 0;
      for (size_t j = i + 1; j < t.size(); ++j) {
        const std::string& x = t[j].text;
        if (x == "(" || x == "[" || x == "{") ++depth;
        else if (x == ")" || x == "]" || x == "}") {
          if (--depth == 0) { close = j; break; }
        } else if (x == ":" && depth == 1 && colon == 0) {
          // Skip `::` qualifications.
          if (t[j - 1].text == ":" || (j + 1 < t.size() && t[j + 1].text == ":")) {
            continue;
          }
          colon = j;
        } else if (x == ";" && depth == 1) {
          colon = 0;  // Classic for; no range.
          break;
        }
      }
      if (colon != 0 && close > colon) {
        // Sequence expression: take the final identifier in the chain if
        // the whole range is an identifier chain (a.b->c_).
        size_t last = close - 1;
        if (t[last].kind == Token::kIdent && names.count(t[last].text)) {
          if (!Allowed(f, t[last].line, "unordered-iter")) {
            Flag(f, t[last].line, "unordered-iter",
                 "range-for over unordered container '" + t[last].text +
                     "' in a replication-visible file — hash order must not "
                     "reach the replication stream (sort first or use "
                     "std::map)");
          }
        }
      }
    }
    // NAME.begin() / NAME.cbegin() / NAME.rbegin()
    if (t[i].kind == Token::kIdent && names.count(t[i].text) &&
        i + 3 < t.size() && t[i + 1].text == "." &&
        (t[i + 2].text == "begin" || t[i + 2].text == "cbegin" ||
         t[i + 2].text == "rbegin") &&
        t[i + 3].text == "(") {
      if (Allowed(f, t[i].line, "unordered-iter")) continue;
      Flag(f, t[i].line, "unordered-iter",
           "iterator over unordered container '" + t[i].text +
               "' in a replication-visible file — hash order must not reach "
               "the replication stream");
    }
  }
}

void Analyzer::CheckSendSize(SourceFile& f) {
  if (!StartsWith(f.rel_path, "src/")) return;
  const auto& t = f.tokens;
  for (size_t i = 1; i + 1 < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || t[i].text != "Send") continue;
    const std::string& before = t[i - 1].text;
    if (before != "." && before != ">") continue;  // obj.Send / ptr->Send
    if (t[i + 1].text != "(") continue;
    // Find the final top-level argument.
    int depth = 0;
    size_t last_arg_start = i + 2;
    size_t close = 0;
    for (size_t j = i + 1; j < t.size(); ++j) {
      const std::string& x = t[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") {
        if (--depth == 0) { close = j; break; }
      } else if (x == "," && depth == 1) {
        last_arg_start = j + 1;
      } else if (x == ";" && depth == 0) {
        break;
      }
    }
    if (close == 0 || close <= last_arg_start) continue;
    if (close - last_arg_start == 1 &&
        t[last_arg_start].kind == Token::kNumber) {
      if (Allowed(f, t[last_arg_start].line, "send-size")) continue;
      Flag(f, t[last_arg_start].line, "send-size",
           "Send size_bytes is the bare literal '" + t[last_arg_start].text +
               "' — pass a named wire-size constant or compute it from the "
               "payload so modeled bandwidth tracks the message");
    }
  }
}

void Analyzer::CheckMutex(SourceFile& f) {
  if (!StartsWith(f.rel_path, "src/")) return;
  if (f.rel_path == "src/common/locks.h" ||
      f.rel_path == "src/common/locks.cc") {
    return;
  }
  static const std::set<std::string> kMutexTypes = {
      "mutex", "recursive_mutex", "shared_mutex", "timed_mutex",
      "recursive_timed_mutex"};
  const auto& t = f.tokens;
  for (size_t i = 2; i < t.size(); ++i) {
    if (t[i].kind != Token::kIdent || !kMutexTypes.count(t[i].text)) continue;
    if (!(t[i - 1].text == ":" && t[i - 2].text == ":")) continue;
    if (i >= 3 && t[i - 3].text != "std") continue;
    // std::lock_guard<std::mutex> as a *type argument* is still a raw-mutex
    // mention; after migration every guard names OrderedMutex, so any
    // std::mutex token in src/ outside locks.h is a violation.
    if (Allowed(f, t[i].line, "raw-mutex")) continue;
    Flag(f, t[i].line, "raw-mutex",
         "raw std::" + t[i].text +
             " — declare a rank in the lock-order table and use "
             "common::OrderedMutex (src/common/locks.h)");
  }
  // Count acquisition sites for the report.
  for (size_t i = 0; i < t.size(); ++i) {
    if (t[i].kind == Token::kIdent &&
        (t[i].text == "lock_guard" || t[i].text == "scoped_lock" ||
         t[i].text == "unique_lock")) {
      ++lock_sites_;
    }
  }
}

void Analyzer::CheckLockRanks(SourceFile& f,
                              const std::set<std::string>& declared) {
  const auto& t = f.tokens;
  for (size_t i = 0; i + 3 < t.size(); ++i) {
    if (t[i].kind == Token::kIdent && t[i].text == "LockRank" &&
        t[i + 1].text == ":" && t[i + 2].text == ":" &&
        t[i + 3].kind == Token::kIdent) {
      const std::string& rank = t[i + 3].text;
      if (!declared.count(rank)) {
        if (Allowed(f, t[i].line, "lock-rank")) continue;
        Flag(f, t[i].line, "lock-rank",
             "LockRank::" + rank +
                 " is not declared in the lock-order table in "
                 "src/common/locks.h");
      }
    }
  }
}

void Analyzer::CheckCodecRegistry() {
  auto msgs = files_.find("src/middleware/messages.h");
  auto reg = files_.find("src/middleware/wire_registry.h");
  if (msgs == files_.end()) return;  // Fixture trees may not have one.
  // Registered names: X(Name, tag) entries.
  std::set<std::string> registered;
  if (reg != files_.end()) {
    const auto& t = reg->second.tokens;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].kind == Token::kIdent && t[i].text == "X" &&
          t[i + 1].text == "(" && t[i + 2].kind == Token::kIdent) {
        registered.insert(t[i + 2].text);
      }
    }
  }
  const auto& t = msgs->second.tokens;
  for (size_t i = 0; i + 2 < t.size(); ++i) {
    if (t[i].kind == Token::kIdent && t[i].text == "struct" &&
        t[i + 1].kind == Token::kIdent && t[i + 2].text == "{") {
      const std::string& name = t[i + 1].text;
      if (!registered.count(name)) {
        if (Allowed(msgs->second, t[i].line, "codec-registry")) continue;
        Flag(msgs->second, t[i].line, "codec-registry",
             "struct " + name +
                 " is not registered in REPLIDB_WIRE_MESSAGES "
                 "(src/middleware/wire_registry.h)");
      }
    }
  }
}

void Analyzer::Run() {
  for (auto& [rel, f] : files_) {
    own_unordered_[rel] = CollectUnorderedDecls(f);
  }
  // Declared lock ranks come out of locks.h's enum.
  std::set<std::string> ranks;
  auto locks = files_.find("src/common/locks.h");
  if (locks != files_.end()) {
    const auto& t = locks->second.tokens;
    bool in_enum = false;
    int depth = 0;
    for (size_t i = 0; i + 2 < t.size(); ++i) {
      if (t[i].text == "enum" && t[i + 1].text == "class" &&
          t[i + 2].text == "LockRank") {
        in_enum = true;
      }
      if (in_enum) {
        if (t[i].text == "{") ++depth;
        if (t[i].text == "}") {
          if (--depth == 0) in_enum = false;
        }
        if (depth == 1 && t[i].kind == Token::kIdent &&
            StartsWith(t[i].text, "k") && i + 1 < t.size() &&
            (t[i + 1].text == "=" || t[i + 1].text == ",")) {
          ranks.insert(t[i].text);
        }
      }
    }
  }
  for (auto& [rel, f] : files_) {
    CheckRng(f);
    CheckClock(f);
    CheckAddrIdentity(f);
    CheckUnorderedIter(f);
    CheckSendSize(f);
    CheckMutex(f);
    CheckLockRanks(f, ranks);
  }
  CheckCodecRegistry();
}

int Analyzer::Report(bool verbose) const {
  std::vector<Finding> sorted = findings_;
  std::sort(sorted.begin(), sorted.end(), [](const Finding& a, const Finding& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  for (const Finding& v : sorted) {
    std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line, v.rule.c_str(),
                v.message.c_str());
  }
  // Allow inventory: every waiver is a documented decision; unused ones
  // are stale and called out so they get cleaned up.
  int allows = 0, unused = 0;
  for (const auto& [rel, f] : files_) {
    for (const AllowDirective& d : f.allows) {
      ++allows;
      if (!d.used) ++unused;
      if (verbose || !d.used) {
        std::string rules;
        for (const std::string& r : d.rules) {
          if (!rules.empty()) rules += ",";
          rules += r;
        }
        std::printf("%s:%d: allow(%s)%s %s\n", rel.c_str(), d.line,
                    rules.c_str(), d.used ? "" : " [UNUSED]",
                    d.reason.c_str());
      }
    }
  }
  std::printf(
      "replicheck: %zu violation%s, %d suppressed by %d allow directiv%s "
      "(%d unused), %zu files, %d lock sites\n",
      sorted.size(), sorted.size() == 1 ? "" : "s", suppressed_, allows,
      allows == 1 ? "e" : "es", unused, files_.size(), lock_sites_);
  return sorted.empty() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string compile_commands;
  bool verbose = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--root" && i + 1 < argc) {
      root = argv[++i];
    } else if (arg == "--compile-commands" && i + 1 < argc) {
      compile_commands = argv[++i];
    } else if (arg == "--verbose" || arg == "-v") {
      verbose = true;
    } else if (arg == "--list-rules") {
      for (const char* r : kAllRules) std::printf("%s\n", r);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: replicheck --root <repo> [--compile-commands <json>] "
          "[--verbose]\n"
          "Determinism & concurrency lint for replidb (see tool header "
          "comment and DESIGN.md for the rule catalogue).\n");
      return 0;
    } else {
      std::fprintf(stderr, "replicheck: unknown argument '%s'\n", arg.c_str());
      return 2;
    }
  }
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    std::fprintf(stderr, "replicheck: --root %s is not a directory\n",
                 root.c_str());
    return 2;
  }
  Analyzer a{fs::path(root)};
  if (!a.LoadFiles(compile_commands)) return 2;
  a.Run();
  return a.Report(verbose);
}
