// benchdiff — compares two bench trajectories (BENCH_<scenario>.json files
// produced by bench/bench_util.h's BenchReport) with per-metric tolerance
// bands, so CI can fail on a throughput / latency / amplification
// regression instead of a human eyeballing bench stdout.
//
// Usage:
//   benchdiff [options] OLD.json NEW.json     compare two reports
//   benchdiff [options] OLD_DIR NEW_DIR       compare every BENCH_*.json in
//                                             OLD_DIR against NEW_DIR
//   benchdiff --self-test                     run built-in checks
//
// Options:
//   --tol PCT    override every relative tolerance band with PCT percent
//   --abs VALUE  extra absolute slack added to every band
//   --verbose    print every metric, not just regressions
//
// Exit codes: 0 = within tolerance, 1 = regression(s), 2 = usage/IO error.
//
// Direction and width of each band are keyed off the metric name (see
// kRules below): ops_per_sec must not drop, p99_ms / bytes_per_txn must
// not rise, lag metrics get a wider band plus absolute slack, and
// wall-clock-derived metrics (events_per_sec) are informational only. The
// simulator is deterministic, so a rerun of the same build is
// bit-identical; the bands only absorb legitimate behavioural drift from
// code changes.

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <dirent.h>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

namespace {

struct Report {
  std::string scenario;
  std::map<std::string, double> metrics;
};

// --- minimal parser for the BenchReport schema ------------------------------
//
// {"schema":1,"scenario":"<name>","metrics":{"<key>":<number>,...}}
// No nesting beyond this, no arrays, no string values inside metrics.

void SkipWs(const std::string& s, size_t* i) {
  while (*i < s.size() && std::isspace(static_cast<unsigned char>(s[*i]))) {
    ++*i;
  }
}

std::optional<std::string> ParseString(const std::string& s, size_t* i) {
  SkipWs(s, i);
  if (*i >= s.size() || s[*i] != '"') return std::nullopt;
  ++*i;
  std::string out;
  while (*i < s.size() && s[*i] != '"') {
    if (s[*i] == '\\' && *i + 1 < s.size()) ++*i;  // Keep escaped char as-is.
    out += s[(*i)++];
  }
  if (*i >= s.size()) return std::nullopt;
  ++*i;  // Closing quote.
  return out;
}

std::optional<double> ParseNumber(const std::string& s, size_t* i) {
  SkipWs(s, i);
  size_t start = *i;
  while (*i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[*i])) || s[*i] == '-' ||
          s[*i] == '+' || s[*i] == '.' || s[*i] == 'e' || s[*i] == 'E' ||
          s[*i] == 'n' || s[*i] == 'a' || s[*i] == 'i' || s[*i] == 'f')) {
    ++*i;  // Accepts nan/inf spellings too; strtod validates.
  }
  if (*i == start) return std::nullopt;
  const std::string tok = s.substr(start, *i - start);
  char* end = nullptr;
  double v = std::strtod(tok.c_str(), &end);
  if (end == tok.c_str()) return std::nullopt;
  return v;
}

bool Expect(const std::string& s, size_t* i, char c) {
  SkipWs(s, i);
  if (*i < s.size() && s[*i] == c) {
    ++*i;
    return true;
  }
  return false;
}

std::optional<Report> ParseReport(const std::string& body) {
  Report r;
  size_t i = 0;
  if (!Expect(body, &i, '{')) return std::nullopt;
  bool saw_metrics = false;
  while (true) {
    auto key = ParseString(body, &i);
    if (!key) return std::nullopt;
    if (!Expect(body, &i, ':')) return std::nullopt;
    if (*key == "scenario") {
      auto v = ParseString(body, &i);
      if (!v) return std::nullopt;
      r.scenario = *v;
    } else if (*key == "metrics") {
      if (!Expect(body, &i, '{')) return std::nullopt;
      SkipWs(body, &i);
      if (i < body.size() && body[i] == '}') {
        ++i;  // Empty metrics object.
      } else {
        while (true) {
          auto name = ParseString(body, &i);
          if (!name) return std::nullopt;
          if (!Expect(body, &i, ':')) return std::nullopt;
          auto value = ParseNumber(body, &i);
          if (!value) return std::nullopt;
          r.metrics[*name] = *value;
          if (Expect(body, &i, ',')) continue;
          if (Expect(body, &i, '}')) break;
          return std::nullopt;
        }
      }
      saw_metrics = true;
    } else {
      // schema (or unknown scalar): a number we don't interpret.
      if (!ParseNumber(body, &i)) return std::nullopt;
    }
    if (Expect(body, &i, ',')) continue;
    if (Expect(body, &i, '}')) break;
    return std::nullopt;
  }
  if (!saw_metrics) return std::nullopt;
  return r;
}

std::optional<Report> LoadReport(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::stringstream ss;
  ss << in.rdbuf();
  return ParseReport(ss.str());
}

// --- tolerance rules --------------------------------------------------------

enum class Direction {
  kHigherBetter,  ///< Fails when NEW drops below OLD - band.
  kLowerBetter,   ///< Fails when NEW rises above OLD + band.
  kStable,        ///< Fails when |NEW - OLD| exceeds the band.
  kInfo,          ///< Never fails (wall-clock-derived or freeform).
};

struct Rule {
  const char* pattern;  ///< Substring matched against the metric name.
  Direction dir;
  double rel_tol;    ///< Fraction of |old| the value may move.
  double abs_slack;  ///< Absolute slack added to the band.
};

// First match wins; more specific patterns go first. The default (no
// match) is a symmetric 25% band: any metric a bench author invents is
// still guarded against silent large drift.
constexpr Rule kRules[] = {
    {"events_per_sec", Direction::kInfo, 0, 0},  // Wall-clock-derived.
    {"sim_events", Direction::kInfo, 0, 0},  // Any behaviour change moves it.
    {"ops_per_sec", Direction::kHigherBetter, 0.10, 5.0},
    {"msgs_per_sec", Direction::kHigherBetter, 0.10, 5.0},
    {"speedup", Direction::kHigherBetter, 0.10, 0.1},
    {"availability_pct", Direction::kHigherBetter, 0.01, 0.25},
    {"compression", Direction::kHigherBetter, 0.10, 0.05},
    {"converged_cells", Direction::kHigherBetter, 0.0, 0.0},
    {"diverged_cells", Direction::kLowerBetter, 0.0, 0.0},
    {"seq_drift_cells", Direction::kLowerBetter, 0.0, 0.0},
    {"error_cells", Direction::kLowerBetter, 0.0, 0.0},
    {"refused_cells", Direction::kStable, 0.0, 0.0},
    {"quorum_writes_ok", Direction::kLowerBetter, 0.0, 0.0},
    {"quorum_writes_refused", Direction::kStable, 0.0, 0.0},
    {"diverged_after_heal", Direction::kLowerBetter, 0.0, 0.0},
    {"bytes_per_txn", Direction::kLowerBetter, 0.10, 64.0},
    {"abort_pct", Direction::kLowerBetter, 0.20, 1.0},
    {"peak_lag", Direction::kLowerBetter, 0.25, 50.0},
    {"final_lag", Direction::kLowerBetter, 0.25, 50.0},
    {"backlog_entries", Direction::kStable, 0.25, 50.0},
    {"lost_txns", Direction::kLowerBetter, 0.25, 20.0},
    {"suspicions", Direction::kStable, 0.50, 2.0},
    {"outage_ms", Direction::kLowerBetter, 0.25, 100.0},
    {"_mb", Direction::kLowerBetter, 0.10, 0.05},
    {"_ms", Direction::kLowerBetter, 0.20, 0.5},
    {"_s", Direction::kLowerBetter, 0.20, 1.0},
};

const Rule* FindRule(const std::string& name) {
  for (const Rule& r : kRules) {
    const size_t plen = std::strlen(r.pattern);
    if (r.pattern[0] == '_') {
      // Suffix patterns: "_ms" must end the name, so "p99_ms" matches but
      // "ms_budget" does not.
      if (name.size() >= plen &&
          name.compare(name.size() - plen, plen, r.pattern) == 0) {
        return &r;
      }
    } else if (name.find(r.pattern) != std::string::npos) {
      return &r;
    }
  }
  return nullptr;
}

struct Options {
  double tol_override = -1;  ///< Percent; <0 = use per-rule bands.
  double abs_extra = 0;
  bool verbose = false;
};

struct MetricVerdict {
  bool regressed = false;
  std::string line;
};

MetricVerdict CompareMetric(const std::string& name, double oldv, double newv,
                            const Options& opt) {
  const Rule* rule = FindRule(name);
  Direction dir = rule ? rule->dir : Direction::kStable;
  double rel = rule ? rule->rel_tol : 0.25;
  double abs_slack = rule ? rule->abs_slack : 0.0;
  if (opt.tol_override >= 0) rel = opt.tol_override / 100.0;
  abs_slack += opt.abs_extra;

  const double band = std::fabs(oldv) * rel + abs_slack;
  const double delta = newv - oldv;
  bool regressed = false;
  switch (dir) {
    case Direction::kHigherBetter:
      regressed = delta < -band;
      break;
    case Direction::kLowerBetter:
      regressed = delta > band;
      break;
    case Direction::kStable:
      regressed = std::fabs(delta) > band;
      break;
    case Direction::kInfo:
      break;
  }
  char buf[256];
  const char* tag = regressed ? "REGRESSION"
                    : dir == Direction::kInfo ? "info"
                                              : "ok";
  std::snprintf(buf, sizeof(buf), "  %-10s %-28s %14.6g -> %-14.6g (band %.6g)",
                tag, name.c_str(), oldv, newv, band);
  return {regressed, buf};
}

int CompareReports(const Report& oldr, const Report& newr, const Options& opt) {
  int regressions = 0;
  std::printf("scenario %s:\n", oldr.scenario.c_str());
  for (const auto& [name, oldv] : oldr.metrics) {
    auto it = newr.metrics.find(name);
    if (it == newr.metrics.end()) {
      std::printf("  REGRESSION %-28s missing from new report\n",
                  name.c_str());
      ++regressions;
      continue;
    }
    MetricVerdict v = CompareMetric(name, oldv, it->second, opt);
    if (v.regressed) ++regressions;
    if (v.regressed || opt.verbose) std::printf("%s\n", v.line.c_str());
  }
  for (const auto& [name, newv] : newr.metrics) {
    if (oldr.metrics.count(name) == 0 && opt.verbose) {
      std::printf("  new        %-28s %.6g (no baseline)\n", name.c_str(),
                  newv);
    }
  }
  if (regressions == 0) {
    std::printf("  ok: %zu metrics within tolerance\n", oldr.metrics.size());
  }
  return regressions;
}

bool IsDir(const std::string& path) {
  struct stat st {};
  return stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

std::vector<std::string> ListBenchJson(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return out;
  while (struct dirent* e = readdir(d)) {
    std::string name = e->d_name;
    if (name.rfind("BENCH_", 0) == 0 && name.size() > 5 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      out.push_back(name);
    }
  }
  closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

int RunDiff(const std::string& old_path, const std::string& new_path,
            const Options& opt) {
  int regressions = 0;
  if (IsDir(old_path) && IsDir(new_path)) {
    std::vector<std::string> files = ListBenchJson(old_path);
    if (files.empty()) {
      std::fprintf(stderr, "benchdiff: no BENCH_*.json under %s\n",
                   old_path.c_str());
      return 2;
    }
    for (const std::string& f : files) {
      auto oldr = LoadReport(old_path + "/" + f);
      if (!oldr) {
        std::fprintf(stderr, "benchdiff: unparsable baseline %s/%s\n",
                     old_path.c_str(), f.c_str());
        return 2;
      }
      auto newr = LoadReport(new_path + "/" + f);
      if (!newr) {
        std::printf("scenario %s:\n  REGRESSION report %s missing/unparsable "
                    "in %s\n",
                    oldr->scenario.c_str(), f.c_str(), new_path.c_str());
        ++regressions;
        continue;
      }
      regressions += CompareReports(*oldr, *newr, opt);
    }
  } else {
    auto oldr = LoadReport(old_path);
    auto newr = LoadReport(new_path);
    if (!oldr || !newr) {
      std::fprintf(stderr, "benchdiff: cannot parse %s\n",
                   (!oldr ? old_path : new_path).c_str());
      return 2;
    }
    regressions = CompareReports(*oldr, *newr, opt);
  }
  if (regressions > 0) {
    std::printf("\nbenchdiff: %d regression(s) beyond tolerance\n",
                regressions);
    return 1;
  }
  std::printf("\nbenchdiff: all metrics within tolerance\n");
  return 0;
}

// --- self test --------------------------------------------------------------

int Fail(const char* what) {
  std::fprintf(stderr, "self-test FAILED: %s\n", what);
  return 1;
}

int SelfTest() {
  const std::string sample =
      "{\"schema\":1,\"scenario\":\"demo\",\"metrics\":{"
      "\"ops_per_sec\":1000,\"p99_ms\":12.5,\"bytes_per_txn\":900,"
      "\"peak_lag\":40,\"events_per_sec\":5e6}}";
  auto r = ParseReport(sample);
  if (!r || r->scenario != "demo" || r->metrics.size() != 5 ||
      r->metrics.at("p99_ms") != 12.5) {
    return Fail("parse");
  }
  Options opt;
  // Identical values never regress.
  for (const auto& [name, v] : r->metrics) {
    if (CompareMetric(name, v, v, opt).regressed) return Fail("identity");
  }
  // ops/s drop beyond 10% fails; within band passes.
  if (!CompareMetric("ops_per_sec", 1000, 850, opt).regressed) {
    return Fail("ops drop undetected");
  }
  if (CompareMetric("ops_per_sec", 1000, 950, opt).regressed) {
    return Fail("ops within band flagged");
  }
  // ops/s *gain* is fine at any size.
  if (CompareMetric("ops_per_sec", 1000, 2000, opt).regressed) {
    return Fail("ops gain flagged");
  }
  // p99 rise beyond 20%+0.5ms fails; a drop is fine.
  if (!CompareMetric("p99_ms", 10, 13, opt).regressed) {
    return Fail("p99 rise undetected");
  }
  if (CompareMetric("p99_ms", 10, 5, opt).regressed) {
    return Fail("p99 drop flagged");
  }
  // bytes/txn rise beyond 10%+64 fails.
  if (!CompareMetric("bytes_per_txn", 900, 1100, opt).regressed) {
    return Fail("bytes rise undetected");
  }
  // Lag band is wide (25% + 50 abs): 40 -> 95 passes, 40 -> 120 fails.
  if (CompareMetric("peak_lag", 40, 95, opt).regressed) {
    return Fail("lag slack missing");
  }
  if (!CompareMetric("peak_lag", 40, 120, opt).regressed) {
    return Fail("lag blowup undetected");
  }
  // Wall-clock metric never fails.
  if (CompareMetric("events_per_sec", 5e6, 1.0, opt).regressed) {
    return Fail("events_per_sec not informational");
  }
  // Unknown metrics get the symmetric default band.
  if (!CompareMetric("custom_counter", 100, 200, opt).regressed ||
      !CompareMetric("custom_counter", 100, 10, opt).regressed ||
      CompareMetric("custom_counter", 100, 110, opt).regressed) {
    return Fail("default band");
  }
  // Suffix rules must not match mid-name.
  const Rule* rule = FindRule("ms_budget");
  if (rule != nullptr && std::strcmp(rule->pattern, "_ms") == 0) {
    return Fail("suffix match leaked");
  }
  // --tol override widens/narrows every band.
  Options strict;
  strict.tol_override = 1.0;  // 1%.
  if (!CompareMetric("ops_per_sec", 1000, 950, strict).regressed) {
    return Fail("tol override ignored");
  }
  // Missing metric in the new report is a regression.
  Report oldr = *r;
  Report newr = *r;
  newr.metrics.erase("p99_ms");
  if (CompareReports(oldr, newr, opt) == 0) return Fail("missing metric");
  std::printf("self-test OK\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--self-test") return SelfTest();
    if (arg == "--verbose") {
      opt.verbose = true;
    } else if (arg == "--tol" && i + 1 < argc) {
      opt.tol_override = std::strtod(argv[++i], nullptr);
    } else if (arg == "--abs" && i + 1 < argc) {
      opt.abs_extra = std::strtod(argv[++i], nullptr);
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "benchdiff: unknown option %s\n", arg.c_str());
      return 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: benchdiff [--tol PCT] [--abs VALUE] [--verbose] "
                 "OLD NEW\n       benchdiff --self-test\n"
                 "OLD/NEW: BENCH_*.json files or directories of them\n");
    return 2;
  }
  return RunDiff(paths[0], paths[1], opt);
}
